// Command regnode runs one process of the sharded keyed register service:
// one member of one shard's quorum group, serving the versioned binary
// keyed client protocol (internal/wire, v2) on its client port and the
// two-bit register mesh protocol toward its shard peers. Start every
// process of the topology (in any order — peers retry dialing), then
// drive keyed reads and writes with regctl.
//
// The topology comes from one validated shard.ClusterConfig, given either
// as a JSON file:
//
//	regnode -config cluster.json -shard 0 -id 1
//
// with cluster.json like
//
//	{"shards": [
//	  {"procs": [{"mesh": "127.0.0.1:7000", "client": "127.0.0.1:7100"},
//	             {"mesh": "127.0.0.1:7001", "client": "127.0.0.1:7101"},
//	             {"mesh": "127.0.0.1:7002", "client": "127.0.0.1:7102"}]},
//	  {"procs": [{"mesh": "127.0.0.1:7010", "client": "127.0.0.1:7110"},
//	             {"mesh": "127.0.0.1:7011", "client": "127.0.0.1:7111"},
//	             {"mesh": "127.0.0.1:7012", "client": "127.0.0.1:7112"}]}]}
//
// or as flag tables (semicolon-separated shards of comma-separated
// addresses, mesh and client tables with identical shapes):
//
//	regnode -peers "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002;127.0.0.1:7010,127.0.0.1:7011,127.0.0.1:7012" \
//	        -clients "127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102;127.0.0.1:7110,127.0.0.1:7111,127.0.0.1:7112" \
//	        -shard 0 -id 1
//
// Each shard is an independent quorum group over the coalescing keyed
// store; every member of a shard may write every key the shard owns
// (last-write-wins multi-writer registers). A key is placed on exactly
// one shard by hash (shard.ShardOfKey); requests for foreign keys answer
// StatusWrongShard.
//
// -legacy serves the deprecated v1 line protocol ("read\n" /
// "write <text>\n") on the client port instead, for one release — see the
// protocol mapping in the repository's doc.go.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"twobitreg/internal/cluster"
	"twobitreg/internal/proto"
	"twobitreg/internal/regmap"
	"twobitreg/internal/shard"
	"twobitreg/internal/transport"
	"twobitreg/internal/wire"
)

// legacyKey is the key the -legacy line protocol's read/write map to: the
// v1 service had exactly one register, which the keyed service hosts
// under this name.
const legacyKey = "default"

func main() {
	configPath := flag.String("config", "", "JSON cluster config file (shard.ClusterConfig)")
	peers := flag.String("peers", "", "mesh address table: ';'-separated shards of ','-separated addresses")
	clients := flag.String("clients", "", "client address table, same shape as -peers")
	shardIdx := flag.Int("shard", 0, "this process's shard index")
	id := flag.Int("id", 0, "this process's index within its shard")
	legacy := flag.Bool("legacy", false, "serve the deprecated v1 line protocol on the client port (one release; see doc.go)")
	flag.Parse()

	if err := run(*configPath, *peers, *clients, *shardIdx, *id, *legacy); err != nil {
		var cerr *shard.ConfigError
		if errors.As(err, &cerr) {
			fmt.Fprintf(os.Stderr, "regnode: bad configuration at %s: %s\n", cerr.Field, cerr.Reason)
		} else {
			fmt.Fprintln(os.Stderr, "regnode:", err)
		}
		os.Exit(1)
	}
}

func run(configPath, peers, clients string, shardIdx, id int, legacy bool) error {
	cfg, err := loadConfig(configPath, peers, clients)
	if err != nil {
		return err
	}
	if shardIdx < 0 || shardIdx >= cfg.NumShards() {
		return fmt.Errorf("-shard %d out of range for %d shards", shardIdx, cfg.NumShards())
	}
	procs := cfg.Shards[shardIdx].Procs
	if id < 0 || id >= len(procs) {
		return fmt.Errorf("-id %d out of range for shard %d's %d processes", id, shardIdx, len(procs))
	}
	n := len(procs)
	meshAddrs := make([]string, n)
	writers := make([]int, n)
	for i, p := range procs {
		meshAddrs[i] = p.Mesh
		writers[i] = i
	}

	// Two-phase construction: the mesh binds first (the deliver closure
	// indirects through the node variable, assigned before peers can
	// produce traffic — they only send once we do).
	var node *cluster.KeyedNode
	mesh, err := transport.NewMesh(id, n, meshAddrs[id], wire.Codec{}, func(from int, msg proto.Message) {
		node.Deliver(from, msg)
	})
	if err != nil {
		return err
	}
	defer mesh.Close()
	if err := mesh.SetPeers(meshAddrs); err != nil {
		return err
	}
	store, err := regmap.NewNode(id, regmap.Config{N: n, DefaultWriters: writers, Coalesce: true})
	if err != nil {
		return err
	}
	node = cluster.NewKeyedNode(id, store, func(to int, msg proto.Message) {
		if err := mesh.Send(to, msg); err != nil {
			log.Printf("send to %d: %v", to, err)
		}
	})
	defer node.Stop()

	ln, err := net.Listen("tcp", procs[id].Client)
	if err != nil {
		return fmt.Errorf("client listener: %w", err)
	}
	pname := "binary v2"
	if legacy {
		pname = "legacy line"
	}
	log.Printf("shard %d/%d process %d/%d up: mesh %s, clients %s (%s protocol)",
		shardIdx, cfg.NumShards(), id, n, meshAddrs[id], procs[id].Client, pname)

	if legacy {
		defer ln.Close()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			go serveLegacy(conn, node)
		}
	}
	srv, err := shard.Serve(ln, shardIdx, cfg.NumShards(), shard.NodeHandler(node))
	if err != nil {
		ln.Close()
		return err
	}
	defer srv.Close()
	select {} // serve until killed
}

// loadConfig resolves the config surface: a JSON file, or the flag tables.
func loadConfig(configPath, peers, clients string) (*shard.ClusterConfig, error) {
	if configPath != "" {
		if peers != "" || clients != "" {
			return nil, fmt.Errorf("-config excludes -peers/-clients")
		}
		return shard.LoadFile(configPath)
	}
	if peers == "" || clients == "" {
		return nil, fmt.Errorf("need -config, or both -peers and -clients")
	}
	return shard.ParseTopology(peers, clients)
}

// serveLegacy speaks the deprecated v1 line protocol, mapped onto the
// keyed store: read → get of the "default" key, write → put of it.
func serveLegacy(conn net.Conn, node *cluster.KeyedNode) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "read":
			v, err := node.Get(legacyKey)
			if err != nil {
				fmt.Fprintf(conn, "err %v\n", err)
				continue
			}
			fmt.Fprintf(conn, "ok %s\n", v)
		case "write":
			if err := node.Put(legacyKey, []byte(rest)); err != nil {
				fmt.Fprintf(conn, "err %v\n", err)
				continue
			}
			fmt.Fprintln(conn, "ok")
		case "quit", "":
			return
		default:
			fmt.Fprintf(conn, "err unknown command %q (use: read | write <text>)\n", cmd)
		}
	}
}
