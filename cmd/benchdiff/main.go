// Command benchdiff compares two benchmark reports produced by
// `go test -json -bench ...` (the BENCH_*.json perf-trajectory files) and
// fails on regressions, so the committed baselines actually gate CI instead
// of being write-only artifacts.
//
// Usage:
//
//	benchdiff -old BENCH_mwmr.json -new fresh/BENCH_mwmr.json [-max-regress 0.30] [-metrics ns/op,msgs/op]
//
// For each benchmark present in both files, every selected metric is
// compared: new > old*(1+max-regress) is a regression and exits non-zero.
// msgs/op is deterministic (seeded workloads), so its gate is exact; ns/op
// guards against order-of-magnitude slowdowns, with the threshold shared by
// default and tunable per invocation. Benchmarks present only in the old
// file fail too (coverage loss); new benchmarks are reported and pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's metric values, e.g. {"ns/op": 123, "msgs/op": 45.6}.
type result map[string]float64

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseFile reads a `go test -json` stream and collects benchmark results.
// A single benchmark line is often split across several output events (the
// name with trailing tab, then the measurements), so the stream is first
// reassembled into per-package text. Repeated runs of the same benchmark
// keep the last value.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Output  string `json:"Output"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate plain-text bench output mixed in.
			ev.Action, ev.Output = "output", line+"\n"
		}
		if ev.Action != "output" {
			continue
		}
		b := text[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			text[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, b := range text {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			name := normalize(m[1])
			fields := strings.Fields(m[2])
			r := result{}
			for i := 0; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				r[fields[i+1]] = v
			}
			if len(r) > 0 {
				out[name] = r
			}
		}
	}
	return out, nil
}

// normalize strips the trailing -GOMAXPROCS suffix so reports from
// different machines align.
func normalize(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	oldPath := flag.String("old", "", "baseline report (go test -json bench stream)")
	newPath := flag.String("new", "", "fresh report to compare against the baseline")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated relative regression per metric")
	metricsFlag := flag.String("metrics", "ns/op,msgs/op", "comma-separated metrics to gate on")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(oldRes) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark results in baseline %s\n", *oldPath)
		os.Exit(2)
	}
	metrics := strings.Split(*metricsFlag, ",")

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		nr, ok := newRes[name]
		if !ok {
			fmt.Printf("MISSING  %s (in baseline, not in fresh run)\n", name)
			failures++
			continue
		}
		or := oldRes[name]
		for _, metric := range metrics {
			ov, hasOld := or[metric]
			nv, hasNew := nr[metric]
			if !hasOld || !hasNew {
				continue
			}
			delta := 0.0
			if ov > 0 {
				delta = (nv - ov) / ov
			}
			status := "ok      "
			if nv > ov*(1+*maxRegress) {
				status = "REGRESS "
				failures++
			}
			fmt.Printf("%s %-60s %-8s old=%.4g new=%.4g (%+.1f%%)\n", status, name, metric, ov, nv, 100*delta)
		}
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			fmt.Printf("new      %s (not in baseline)\n", name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", failures, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline\n", len(names), 100**maxRegress)
}
