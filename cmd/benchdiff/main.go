// Command benchdiff compares benchmark reports produced by
// `go test -json -bench ...` (the BENCH_*.json perf-trajectory files) and
// fails on regressions, so the committed baselines actually gate CI instead
// of being write-only artifacts.
//
// Usage:
//
//	benchdiff -baseline BENCH_check.json -baseline BENCH_mwmr.json \
//	          -new fresh/BENCH_check.json -new fresh/BENCH_mwmr.json \
//	          -gate 'msgs/op=0.30' -gate 'ns/op=1.0'
//
// Every -baseline file merges into one baseline set and every -new file
// into one fresh set, so one invocation gates the whole trajectory. Each
// -gate names a metric and its maximum tolerated relative regression; all
// benchmarks are compared under every gate and ALL failures are reported in
// one per-metric table before the non-zero exit — no first-error-wins.
// msgs/op is deterministic (seeded workloads), so its gate is exact; ns/op
// guards against machine-class-sized slowdowns. Benchmarks present only in
// the baseline fail too (coverage loss); new benchmarks are reported and
// pass.
//
// The legacy single-file form (-old a.json -new b.json -metrics m1,m2
// -max-regress 0.30) still works: -old is an alias for -baseline, and
// -metrics/-max-regress expand to one -gate per metric.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's metric values, e.g. {"ns/op": 123, "msgs/op": 45.6}.
type result map[string]float64

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseStream reads one `go test -json` stream and collects benchmark
// results. A single benchmark line is often split across several output
// events (the name with trailing tab, then the measurements), so the stream
// is first reassembled into per-package text. Repeated runs of the same
// benchmark keep the last value.
func parseStream(r io.Reader) (map[string]result, error) {
	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Output  string `json:"Output"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate plain-text bench output mixed in.
			ev.Action, ev.Output = "output", line+"\n"
		}
		if ev.Action != "output" {
			continue
		}
		b := text[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			text[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, b := range text {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			name := normalize(m[1])
			fields := strings.Fields(m[2])
			r := result{}
			for i := 0; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				r[fields[i+1]] = v
			}
			if len(r) > 0 {
				out[name] = r
			}
		}
	}
	return out, nil
}

// parseFiles parses and merges several report files. A benchmark appearing
// in two files keeps the later file's values.
func parseFiles(paths []string) (map[string]result, error) {
	merged := make(map[string]result)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		res, err := parseStream(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for name, r := range res {
			merged[name] = r
		}
	}
	return merged, nil
}

// normalize strips the trailing -GOMAXPROCS suffix so reports from
// different machines align.
func normalize(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gate is one metric's regression bound.
type gate struct {
	metric     string
	maxRegress float64
}

// parseGate parses "metric=threshold", e.g. "msgs/op=0.30".
func parseGate(s string) (gate, error) {
	i := strings.LastIndex(s, "=")
	if i <= 0 || i == len(s)-1 {
		return gate{}, fmt.Errorf("benchdiff: gate %q is not metric=max-regress", s)
	}
	v, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil || v < 0 {
		return gate{}, fmt.Errorf("benchdiff: gate %q has a bad threshold", s)
	}
	return gate{metric: s[:i], maxRegress: v}, nil
}

// row is one comparison outcome for the report table.
type row struct {
	status string // "ok", "REGRESS", "MISSING", "new"
	name   string
	metric string
	old    float64
	new    float64
	delta  float64
	bound  float64
}

// compare evaluates every gate over every baseline benchmark and returns
// the full table plus the failure count — all failures, not the first.
func compare(oldRes, newRes map[string]result, gates []gate) ([]row, int) {
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []row
	failures := 0
	for _, g := range gates {
		for _, name := range names {
			or := oldRes[name]
			ov, hasOld := or[g.metric]
			if !hasOld {
				continue
			}
			nr, ok := newRes[name]
			if !ok {
				rows = append(rows, row{status: "MISSING", name: name, metric: g.metric, old: ov})
				failures++
				continue
			}
			nv, hasNew := nr[g.metric]
			if !hasNew {
				rows = append(rows, row{status: "MISSING", name: name, metric: g.metric, old: ov})
				failures++
				continue
			}
			delta := 0.0
			if ov > 0 {
				delta = (nv - ov) / ov
			}
			status := "ok"
			if nv > ov*(1+g.maxRegress) {
				status = "REGRESS"
				failures++
			}
			rows = append(rows, row{status: status, name: name, metric: g.metric,
				old: ov, new: nv, delta: delta, bound: g.maxRegress})
		}
	}
	var extra []string
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, row{status: "new", name: name})
	}
	return rows, failures
}

// render prints the per-metric table.
func render(w io.Writer, rows []row) {
	metric := ""
	for _, r := range rows {
		if r.status == "new" {
			fmt.Fprintf(w, "new      %s (not in baseline)\n", r.name)
			continue
		}
		if r.metric != metric {
			metric = r.metric
			fmt.Fprintf(w, "== %s ==\n", metric)
		}
		switch r.status {
		case "MISSING":
			fmt.Fprintf(w, "MISSING  %-64s (in baseline, not in fresh run)\n", r.name)
		default:
			fmt.Fprintf(w, "%-8s %-64s old=%.4g new=%.4g (%+.1f%%, bound +%.0f%%)\n",
				r.status, r.name, r.old, r.new, 100*r.delta, 100*r.bound)
		}
	}
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// flags is the parsed command line.
type flags struct {
	fs                         *flag.FlagSet
	baselines, newPaths, gates stringList
	oldPath, metrics           string
	maxRegress                 float64
}

func newFlagSet(stderr io.Writer) *flags {
	f := &flags{fs: flag.NewFlagSet("benchdiff", flag.ContinueOnError)}
	f.fs.SetOutput(stderr)
	f.fs.Var(&f.baselines, "baseline", "baseline report (repeatable; all merge into one baseline set)")
	f.fs.Var(&f.newPaths, "new", "fresh report to compare against the baseline (repeatable)")
	f.fs.Var(&f.gates, "gate", "metric=max-regress gate, e.g. 'msgs/op=0.30' (repeatable)")
	f.fs.StringVar(&f.oldPath, "old", "", "legacy alias for -baseline")
	f.fs.StringVar(&f.metrics, "metrics", "ns/op,msgs/op", "legacy: comma-separated metrics, gated at -max-regress each")
	f.fs.Float64Var(&f.maxRegress, "max-regress", 0.30, "legacy: maximum tolerated relative regression for -metrics")
	return f
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet(stderr)
	if err := fs.fs.Parse(args); err != nil {
		return 2
	}
	baselines := append(stringList{}, fs.baselines...)
	if fs.oldPath != "" {
		baselines = append(baselines, fs.oldPath)
	}
	if len(baselines) == 0 || len(fs.newPaths) == 0 {
		fmt.Fprintln(stderr, "benchdiff: at least one -baseline (or -old) and one -new are required")
		return 2
	}
	var gates []gate
	for _, g := range fs.gates {
		parsed, err := parseGate(g)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		gates = append(gates, parsed)
	}
	if len(gates) == 0 {
		for _, m := range strings.Split(fs.metrics, ",") {
			if m = strings.TrimSpace(m); m != "" {
				gates = append(gates, gate{metric: m, maxRegress: fs.maxRegress})
			}
		}
	}
	oldRes, err := parseFiles(baselines)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newRes, err := parseFiles(fs.newPaths)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(oldRes) == 0 {
		fmt.Fprintf(stderr, "benchdiff: no benchmark results in baseline(s) %s\n", strings.Join(baselines, ", "))
		return 2
	}
	rows, failures := compare(oldRes, newRes, gates)
	render(stdout, rows)
	if failures > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s)/missing benchmark(s) across %d gate(s)\n", failures, len(gates))
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within bounds across %d gate(s)\n", len(oldRes), len(gates))
	return 0
}
