package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream builds a minimal go-test-json bench stream with the given
// benchmark lines, split across output events the way `go test -json`
// splits them (name event, then measurements event).
func stream(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"p"}` + "\n")
	ev := func(output string) {
		raw, _ := json.Marshal(struct {
			Action  string
			Package string
			Output  string
		}{"output", "p", output})
		b.Write(raw)
		b.WriteByte('\n')
	}
	for _, l := range lines {
		parts := strings.SplitN(l, "\t", 2)
		ev(parts[0] + "\t")
		ev(parts[1] + "\n")
	}
	return b.String()
}

func TestParseStreamSplitEvents(t *testing.T) {
	t.Parallel()
	res, err := parseStream(strings.NewReader(stream(
		"BenchmarkA/x-8\t  10\t 123.4 ns/op\t 7 msgs/op",
		"BenchmarkB-16\t  3\t 99 ns/op",
	)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(res), res)
	}
	a := res["BenchmarkA/x"]
	if a["ns/op"] != 123.4 || a["msgs/op"] != 7 {
		t.Fatalf("BenchmarkA/x = %v", a)
	}
	if res["BenchmarkB"]["ns/op"] != 99 {
		t.Fatalf("BenchmarkB = %v", res["BenchmarkB"])
	}
}

func TestParseFilesMergesBaselines(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", stream("BenchmarkA\t1\t10 ns/op"))
	b := write("b.json", stream("BenchmarkB\t1\t20 ns/op", "BenchmarkA\t1\t30 ns/op"))
	res, err := parseFiles([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("merged %d benchmarks, want 2", len(res))
	}
	// Later files win on collision.
	if res["BenchmarkA"]["ns/op"] != 30 {
		t.Fatalf("BenchmarkA = %v, want the later file's 30", res["BenchmarkA"])
	}
}

func TestParseGate(t *testing.T) {
	t.Parallel()
	g, err := parseGate("msgs/op=0.30")
	if err != nil || g.metric != "msgs/op" || g.maxRegress != 0.30 {
		t.Fatalf("parseGate = %+v, %v", g, err)
	}
	// The metric may itself contain '=' up to the last one.
	if g, err := parseGate("a=b=1.5"); err != nil || g.metric != "a=b" || g.maxRegress != 1.5 {
		t.Fatalf("parseGate(a=b=1.5) = %+v, %v", g, err)
	}
	for _, bad := range []string{"", "msgs/op", "=0.3", "msgs/op=", "msgs/op=-1", "msgs/op=x"} {
		if _, err := parseGate(bad); err == nil {
			t.Fatalf("parseGate(%q) accepted", bad)
		}
	}
}

func TestCompareReportsAllFailuresPerMetric(t *testing.T) {
	t.Parallel()
	oldRes := map[string]result{
		"BenchmarkA": {"ns/op": 100, "msgs/op": 10},
		"BenchmarkB": {"ns/op": 100, "msgs/op": 10},
		"BenchmarkC": {"ns/op": 100},
	}
	newRes := map[string]result{
		"BenchmarkA": {"ns/op": 500, "msgs/op": 20}, // regresses both gates
		"BenchmarkB": {"ns/op": 110, "msgs/op": 11}, // within both
		"BenchmarkD": {"ns/op": 1},                  // new
	}
	gates := []gate{{"msgs/op", 0.30}, {"ns/op", 1.0}}
	rows, failures := compare(oldRes, newRes, gates)
	// A regresses msgs/op and ns/op; C is missing under ns/op (its only
	// metric) — three failures, ALL reported, not first-error-wins.
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (rows: %+v)", failures, rows)
	}
	statuses := map[string]string{}
	for _, r := range rows {
		statuses[r.metric+"|"+r.name] = r.status
	}
	for key, want := range map[string]string{
		"msgs/op|BenchmarkA": "REGRESS",
		"msgs/op|BenchmarkB": "ok",
		"ns/op|BenchmarkA":   "REGRESS",
		"ns/op|BenchmarkB":   "ok",
		"ns/op|BenchmarkC":   "MISSING",
		"|BenchmarkD":        "new",
	} {
		if statuses[key] != want {
			t.Fatalf("%s = %q, want %q (rows: %+v)", key, statuses[key], want, rows)
		}
	}
}

// TestRunEndToEnd exercises the CLI surface: multiple -baseline and -new
// files, multiple -gate flags, a per-metric table on stdout, and exit codes
// 0 (clean) and 1 (regression).
func TestRunEndToEnd(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base1 := write("base1.json", stream("BenchmarkA\t1\t100 ns/op\t10 msgs/op"))
	base2 := write("base2.json", stream("BenchmarkB\t1\t100 ns/op\t10 msgs/op"))
	freshOK := write("fresh_ok.json", stream(
		"BenchmarkA\t1\t120 ns/op\t10 msgs/op",
		"BenchmarkB\t1\t90 ns/op\t9 msgs/op"))
	freshBad := write("fresh_bad.json", stream(
		"BenchmarkA\t1\t120 ns/op\t20 msgs/op",
		"BenchmarkB\t1\t900 ns/op\t9 msgs/op"))

	var out, errOut strings.Builder
	code := run([]string{
		"-baseline", base1, "-baseline", base2, "-new", freshOK,
		"-gate", "msgs/op=0.30", "-gate", "ns/op=1.0",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("clean comparison exited %d: %s%s", code, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{
		"-baseline", base1, "-baseline", base2, "-new", freshBad,
		"-gate", "msgs/op=0.30", "-gate", "ns/op=1.0",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("regressing comparison exited %d, want 1", code)
	}
	got := out.String()
	for _, want := range []string{"== msgs/op ==", "== ns/op ==", "REGRESS"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(errOut.String(), "2 regression(s)") {
		t.Fatalf("stderr = %q, want both regressions counted", errOut.String())
	}

	// Legacy form still works.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-old", base1, "-new", freshOK, "-metrics", "msgs/op", "-max-regress", "0.30"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("legacy form exited %d: %s%s", code, out.String(), errOut.String())
	}
}

// TestParseBenchmemAllocs pins the -benchmem line shape: B/op and
// allocs/op ride the same "value unit" pairs as ns/op, so a benchmem
// report parses into first-class gateable metrics without special cases.
func TestParseBenchmemAllocs(t *testing.T) {
	t.Parallel()
	res, err := parseStream(strings.NewReader(stream(
		"BenchmarkSweepThroughput/twobit-4\t  2538\t 908258 ns/op\t 1101 sched/s\t 102659 B/op\t 888 allocs/op",
	)))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkSweepThroughput/twobit"]
	if r == nil {
		t.Fatalf("benchmark not parsed: %v", res)
	}
	for metric, want := range map[string]float64{
		"ns/op": 908258, "sched/s": 1101, "B/op": 102659, "allocs/op": 888,
	} {
		if r[metric] != want {
			t.Fatalf("%s = %v, want %v (parsed %v)", metric, r[metric], want, r)
		}
	}
}

// TestAllocsGateFailureTable gates allocs/op alongside ns/op and checks
// the per-metric failure table: an alloc regression must fail under its
// own gate and be reported in the allocs/op section, while the passing
// ns/op comparison for the same benchmark stays "ok" in its section.
func TestAllocsGateFailureTable(t *testing.T) {
	t.Parallel()
	oldRes := map[string]result{
		"BenchmarkSweep": {"ns/op": 1000, "allocs/op": 100},
		"BenchmarkRun":   {"ns/op": 500, "allocs/op": 50},
	}
	newRes := map[string]result{
		"BenchmarkSweep": {"ns/op": 1050, "allocs/op": 200}, // allocs doubled
		"BenchmarkRun":   {"ns/op": 510, "allocs/op": 51},
	}
	rows, failures := compare(oldRes, newRes, []gate{
		{metric: "ns/op", maxRegress: 1.0},
		{metric: "allocs/op", maxRegress: 0.30},
	})
	if failures != 1 {
		t.Fatalf("failures = %d, want exactly the allocs/op regression", failures)
	}
	byKey := map[string]row{}
	for _, r := range rows {
		byKey[r.metric+"|"+r.name] = r
	}
	if r := byKey["allocs/op|BenchmarkSweep"]; r.status != "REGRESS" {
		t.Fatalf("allocs/op regression not flagged: %+v", r)
	}
	if r := byKey["ns/op|BenchmarkSweep"]; r.status != "ok" {
		t.Fatalf("passing ns/op comparison misreported: %+v", r)
	}
	if r := byKey["allocs/op|BenchmarkRun"]; r.status != "ok" {
		t.Fatalf("within-bounds allocs comparison misreported: %+v", r)
	}
}
