// Command regctl drives the sharded keyed register service over the
// versioned binary client protocol (the default since v2), routing each
// key to its shard and failing over across the shard's members.
//
// Usage:
//
//	regctl -cluster "127.0.0.1:7100,127.0.0.1:7101;127.0.0.1:7110,127.0.0.1:7111" put color blue
//	regctl -cluster "..." get color
//	regctl -config cluster.json get color
//	regctl -addr 127.0.0.1:7100 get color        # single node, single shard
//
// -cluster takes the client address table (';'-separated shards of
// ','-separated addresses); -config takes the same JSON file regnode
// serves from (mesh addresses are ignored — clients never dial them).
//
// -legacy speaks the deprecated v1 line protocol instead, against a
// regnode started with -legacy:
//
//	regctl -legacy -addr 127.0.0.1:7100 write hello
//	regctl -legacy -addr 127.0.0.1:7100 read
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"twobitreg/internal/regclient"
	"twobitreg/internal/shard"
)

func main() {
	addr := flag.String("addr", "", "single node client address (one-shard shorthand)")
	clusterList := flag.String("cluster", "", "client address table: ';'-separated shards of ','-separated addresses")
	configPath := flag.String("config", "", "JSON cluster config file (shard.ClusterConfig)")
	legacy := flag.Bool("legacy", false, "speak the deprecated v1 line protocol (read | write <text>)")
	flag.Parse()

	if err := run(*addr, *clusterList, *configPath, *legacy, flag.Args()); err != nil {
		var cerr *shard.ConfigError
		if errors.As(err, &cerr) {
			fmt.Fprintf(os.Stderr, "regctl: bad configuration at %s: %s\n", cerr.Field, cerr.Reason)
		} else {
			fmt.Fprintln(os.Stderr, "regctl:", err)
		}
		os.Exit(1)
	}
}

func run(addr, clusterList, configPath string, legacy bool, args []string) error {
	if legacy {
		if addr == "" {
			return fmt.Errorf("-legacy needs -addr")
		}
		return runLegacy(addr, args)
	}
	cfg, err := loadConfig(addr, clusterList, configPath)
	if err != nil {
		return err
	}
	if len(args) < 1 {
		return fmt.Errorf("need a command: get <key> | put <key> <value>")
	}
	cl, err := regclient.New(cfg, 0)
	if err != nil {
		return err
	}
	defer cl.Close()
	switch args[0] {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		v, err := cl.Get(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", v)
		return nil
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <key> <value>")
		}
		return cl.Put(args[1], []byte(strings.Join(args[2:], " ")))
	default:
		return fmt.Errorf("unknown command %q (use: get <key> | put <key> <value>)", args[0])
	}
}

// loadConfig resolves exactly one of the three addressing surfaces.
func loadConfig(addr, clusterList, configPath string) (*shard.ClusterConfig, error) {
	set := 0
	for _, s := range []string{addr, clusterList, configPath} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("need exactly one of -addr, -cluster, -config")
	}
	switch {
	case configPath != "":
		return shard.LoadFile(configPath)
	case clusterList != "":
		return shard.ParseTopology("", clusterList)
	default:
		return shard.ParseTopology("", addr)
	}
}

// runLegacy speaks the v1 line protocol: one command, one response line.
func runLegacy(addr string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("need a command: read | write <text>")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, strings.Join(args, " ")); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return fmt.Errorf("no response: %v", sc.Err())
	}
	resp := sc.Text()
	fmt.Println(resp)
	if strings.HasPrefix(resp, "err") {
		os.Exit(1)
	}
	return nil
}
