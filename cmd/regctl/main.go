// Command regctl drives a regnode over its client port.
//
// Usage:
//
//	regctl -addr 127.0.0.1:7100 write <text...>
//	regctl -addr 127.0.0.1:7102 read
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "regnode client address")
	flag.Parse()
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "regctl:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("need a command: read | write <text>")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, strings.Join(args, " ")); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return fmt.Errorf("no response: %v", sc.Err())
	}
	resp := sc.Text()
	fmt.Println(resp)
	if strings.HasPrefix(resp, "err") {
		os.Exit(1)
	}
	return nil
}
