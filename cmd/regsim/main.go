// Command regsim runs a seeded end-to-end simulation of a register
// algorithm: a randomized read/write workload over a delay-randomized
// non-FIFO network, optional minority crashes, continuous checking of the
// proof's invariants (two-bit register), and a final atomicity verdict on
// the recorded history.
//
// Usage:
//
//	regsim [-alg twobit] [-n 5] [-ops 50] [-reads 0.6] [-seed 1]
//	       [-crashes 0] [-dmin 0.2] [-dmax 2.0] [-adversary slowquorum]
//
// -adversary replaces the uniform delay model with one of the schedule
// explorer's adversary profiles (see internal/explore.StrategyNames).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twobitreg/internal/eval"
	"twobitreg/internal/explore"
	"twobitreg/internal/proto"
)

func main() {
	alg := flag.String("alg", "twobit", "algorithm: twobit, twobit-oracle, twobit-gc, twobit-mwmr, abd, abd-mwmr, bounded-abd, attiya (or a mut-* variant to watch the checkers catch it)")
	n := flag.Int("n", 5, "number of processes")
	ops := flag.Int("ops", 50, "operations in the workload")
	reads := flag.Float64("reads", 0.6, "read fraction in [0,1]")
	seed := flag.Int64("seed", 1, "simulation seed")
	crashes := flag.Int("crashes", 0, "non-writer processes to crash (capped at t)")
	dmin := flag.Float64("dmin", 0.2, "minimum message delay")
	dmax := flag.Float64("dmax", 2.0, "maximum message delay")
	adversary := flag.String("adversary", "", "adversary delay profile (default: uniform delays)")
	flag.Parse()

	if err := run(*alg, *n, *ops, *reads, *seed, *crashes, *dmin, *dmax, *adversary); err != nil {
		fmt.Fprintln(os.Stderr, "regsim:", err)
		os.Exit(1)
	}
}

func algorithm(name string) (proto.Algorithm, error) {
	if alg, ok := explore.ByName(name); ok {
		return alg, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (have %s and mutants %s)",
		name, strings.Join(explore.AlgorithmNames(), ", "), strings.Join(explore.MutantNames(), ", "))
}

func run(algName string, n, ops int, reads float64, seed int64, crashes int, dmin, dmax float64, adversary string) error {
	alg, err := algorithm(algName)
	if err != nil {
		return err
	}
	spec := eval.ScenarioSpec{
		N: n, Ops: ops, ReadFraction: reads, Seed: seed,
		Crashes: crashes, DelayLo: dmin, DelayHi: dmax, ValueSize: 16,
	}
	delayDesc := fmt.Sprintf("U[%.2g,%.2g]", dmin, dmax)
	if adversary != "" {
		fn, maxDelay, err := explore.ProfileDelay(adversary, n, seed)
		if err != nil {
			return err
		}
		spec.Delay = fn
		spec.DelayHi = maxDelay // worst-case estimate for invocation spacing
		delayDesc = fmt.Sprintf("adversary %q (max %.2g)", adversary, maxDelay)
	}
	res, err := eval.RunScenario(alg, spec)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm     %s\n", algName)
	fmt.Printf("processes     n=%d t=%d quorum=%d crashes=%d\n",
		n, proto.MaxFaulty(n), proto.QuorumSize(n), crashes)
	fmt.Printf("workload      %d ops, %.0f%% reads, seed %d, delay %s\n",
		ops, reads*100, seed, delayDesc)
	fmt.Printf("events        %d simulator events\n", res.Events)
	fmt.Printf("completed     %d/%d operations\n", res.Completed, ops)
	fmt.Printf("traffic       %s\n", res.Metrics)
	if res.InvariantErr != nil {
		return fmt.Errorf("INVARIANT VIOLATION: %w", res.InvariantErr)
	}
	if res.AtomicityErr != nil {
		return fmt.Errorf("NON-ATOMIC HISTORY: %w", res.AtomicityErr)
	}
	fmt.Println("atomicity     history passes the SWMR checker ✓")
	if algName == "twobit" || algName == "twobit-oracle" || algName == "twobit-gc" {
		fmt.Println("invariants    Lemmas 1-4 and Properties P1-P2 held throughout ✓")
	}
	return nil
}
