package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed. Not safe for parallel subtests.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

func TestRunSmoke(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run("twobit", 3, 8, 0.5, 1, 0, 0.2, 2.0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"algorithm     twobit",
		"processes     n=3 t=1 quorum=2",
		"completed     8/8 operations",
		"atomicity     history passes the SWMR checker",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAdversaryProfile(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run("abd", 5, 10, 0.6, 3, 1, 0.2, 2.0, "slowquorum")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `adversary "slowquorum"`) {
		t.Fatalf("output does not mention the adversary profile:\n%s", out)
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run("nope", 3, 4, 0.5, 1, 0, 0.2, 2.0, "")
	}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := captureStdout(t, func() error {
		return run("twobit", 3, 4, 0.5, 1, 0, 0.2, 2.0, "nope")
	}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}
