package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"twobitreg/internal/regload"
)

// capture runs run() with stdout/stderr redirected to files and returns
// (exit code, stdout, stderr).
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code := run(args, outF, errF)
	out, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errs, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errs)
}

// TestRegloadSmoke is the CLI equivalent of the CI loopback smoke: a tiny
// fixed-ops run must exit 0, report its ops, and satisfy the -min-ops
// gate.
func TestRegloadSmoke(t *testing.T) {
	code, out, errs := capture(t,
		"-procs", "3", "-clients", "2", "-keys", "4", "-ops", "40", "-min-ops", "40", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errs)
	}
	if !strings.Contains(out, "ops/sec") || !strings.Contains(out, "mesh:") {
		t.Fatalf("report missing from stdout:\n%s", out)
	}
}

func TestRegloadJSONOutput(t *testing.T) {
	code, out, errs := capture(t,
		"-procs", "3", "-clients", "2", "-keys", "4", "-ops", "30", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errs)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"ops", "ops_per_sec", "read_latency", "write_latency", "mesh"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("JSON report lacks %q", key)
		}
	}
	if ops, ok := rep["ops"].(float64); !ok || ops < 30 {
		t.Errorf("ops = %v, want >= 30", rep["ops"])
	}
}

// TestRegloadFlagValidation checks every rejection path exits 2 with the
// offending flag named on stderr, without standing up a cluster.
func TestRegloadFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"bad procs", []string{"-procs", "0", "-ops", "10"}, "-procs"},
		{"bad read frac", []string{"-read-frac", "1.5", "-ops", "10"}, "-read-frac"},
		{"bad dead list", []string{"-dead", "1,x", "-ops", "10"}, "-dead"},
		{"dead majority", []string{"-dead", "0,1", "-ops", "10"}, "-dead"},
		{"negative min-ops", []string{"-ops", "10", "-min-ops", "-1"}, "-min-ops"},
		{"bad flush window", []string{"-ops", "10", "-flush-window", "2s"}, "-flush-window"},
		{"restart missing offset", []string{"-restart", "2", "-ops", "10"}, "-restart"},
		{"restart bad proc", []string{"-restart", "x@1", "-ops", "10"}, "-restart"},
		{"restart negative offset", []string{"-restart", "1@-2", "-ops", "10"}, "-restart"},
		{"restart out of range", []string{"-restart", "9@1", "-ops", "10"}, "-restart"},
		{"restart of dead proc", []string{"-dead", "2", "-restart", "2@1", "-ops", "10"}, "-restart"},
		{"restart breaks quorum", []string{"-dead", "2", "-restart", "1@1", "-ops", "10"}, "-restart"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errs := capture(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errs)
			}
			if !strings.Contains(errs, tc.want) {
				t.Fatalf("stderr lacks %q:\n%s", tc.want, errs)
			}
		})
	}
}

// TestRegloadMinOpsGate: a run that completes fewer ops than the gate must
// exit 1 (distinct from the usage-error exit 2).
func TestRegloadMinOpsGate(t *testing.T) {
	code, _, errs := capture(t,
		"-procs", "3", "-clients", "1", "-keys", "1", "-ops", "5", "-min-ops", "1000000")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errs)
	}
	if !strings.Contains(errs, "below the -min-ops gate") {
		t.Fatalf("gate message missing:\n%s", errs)
	}
}

func TestParseRestarts(t *testing.T) {
	got, err := parseRestarts(" 2@1.5 ,0@0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []regload.Restart{
		{Proc: 2, After: 1500 * time.Millisecond},
		{Proc: 0, After: 250 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseRestarts = %+v, want %+v", got, want)
	}
	if out, err := parseRestarts(""); err != nil || out != nil {
		t.Fatalf("empty list = %v, %v", out, err)
	}
	for _, bad := range []string{"2", "@1", "2@", "2@zero", "2@0", "1@1,,2@1"} {
		if _, err := parseRestarts(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseDead(t *testing.T) {
	got, err := parseDead(" 0, 2 ,5")
	if err != nil || !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("parseDead = %v, %v", got, err)
	}
	if out, err := parseDead(""); err != nil || out != nil {
		t.Fatalf("empty list = %v, %v", out, err)
	}
	if _, err := parseDead("1,,2"); err == nil {
		t.Fatal("accepted empty element")
	}
}
