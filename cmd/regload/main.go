// Command regload is the closed-loop load harness for the sharded keyed
// TCP service: it stands up a shards×(procs/shards) cluster of the
// coalescing keyed store over loopback TCP (the cmd/regnode v2 production
// stack, client-protocol servers included), drives it through
// internal/regclient with closed-loop client goroutines, and reports
// ops/sec plus read/write latency histograms (p50/p95/p99) and the mesh's
// batching counters.
//
// Examples:
//
//	regload -procs 3 -clients 16 -keys 64 -read-frac 0.6 -duration 5s
//	regload -procs 6 -shards 2 -clients 16 -duration 5s   # two independent quorum groups
//	regload -procs 5 -clients 32 -keys 200 -ops 20000 -coalesce=false -json
//	regload -procs 3 -clients 8 -duration 5s -dead 2   # dead-peer scenario
//	regload -procs 3 -clients 8 -duration 5s -restart 2@1.5   # kill p2 at 1.5s, revive from its log
//
// Exactly one of -duration and -ops bounds the run. -min-ops makes the run
// a gate: fewer completed operations exit non-zero (the CI loopback smoke).
// All flags are validated up front; mistakes report the offending flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"twobitreg/internal/regload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("regload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		procs    = fs.Int("procs", 3, "total process count (majority quorums per shard: dead peers must stay a minority)")
		shards   = fs.Int("shards", 1, "shard count (-procs must divide evenly; each shard is an independent quorum group)")
		clients  = fs.Int("clients", 8, "closed-loop client goroutines, spread over the live processes")
		keys     = fs.Int("keys", 64, "key-space size of the keyed store")
		readFrac = fs.Float64("read-frac", 0.6, "fraction of operations that are reads, in [0,1]")
		duration = fs.Duration("duration", 5*time.Second, "wall-clock run length (set -ops to bound by count instead)")
		ops      = fs.Int64("ops", 0, "total operation budget (overrides -duration when positive)")
		valSize  = fs.Int("value-size", 16, "written payload bytes")
		coalesce = fs.Bool("coalesce", true, "cross-key frame coalescing in the keyed store")
		perFrame = fs.Bool("per-frame", false, "one conn.Write per frame (batching-off measurement baseline)")
		flushWin = fs.Duration("flush-window", 0, "sender linger before each drain (bigger batches, added latency)")
		seed     = fs.Int64("seed", 1, "workload seed (same spec + seed = same op mix)")
		dead     = fs.String("dead", "", "comma-separated process ids to kill before load (dead-peer scenario)")
		restart  = fs.String("restart", "", "comma-separated proc@seconds kill-and-revive faults, e.g. 2@1.5 (revived from the durable log after the default downtime)")
		minOps   = fs.Int64("min-ops", 0, "exit non-zero if fewer operations complete (CI smoke gate)")
		asJSON   = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	deadList, err := parseDead(*dead)
	if err != nil {
		fmt.Fprintln(stderr, "regload: invalid -dead:", err)
		return 2
	}
	restarts, err := parseRestarts(*restart)
	if err != nil {
		fmt.Fprintln(stderr, "regload: invalid -restart:", err)
		return 2
	}
	spec := regload.Spec{
		Procs:       *procs,
		Shards:      *shards,
		Clients:     *clients,
		Keys:        *keys,
		ReadFrac:    *readFrac,
		ValueSize:   *valSize,
		Coalesce:    *coalesce,
		PerFrame:    *perFrame,
		FlushWindow: *flushWin,
		Seed:        *seed,
		Dead:        deadList,
		Restart:     restarts,
	}
	if *ops > 0 {
		spec.Ops = *ops
	} else {
		spec.Duration = *duration
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *minOps < 0 {
		fmt.Fprintln(stderr, "regload: invalid -min-ops: must be non-negative")
		return 2
	}

	rep, err := regload.Run(spec)
	if err != nil {
		fmt.Fprintln(stderr, "regload:", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "regload:", err)
			return 1
		}
	} else {
		fmt.Fprintln(stdout, rep)
	}
	if *minOps > 0 && rep.Ops < *minOps {
		fmt.Fprintf(stderr, "regload: completed %d ops, below the -min-ops gate of %d\n", rep.Ops, *minOps)
		return 1
	}
	return 0
}

// parseRestarts parses the comma-separated -restart list of proc@seconds
// entries (downtime uses the Restart default); range and quorum checks
// live in Spec.Validate.
func parseRestarts(s string) ([]regload.Restart, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]regload.Restart, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		proc, at, ok := strings.Cut(p, "@")
		if !ok {
			return nil, fmt.Errorf("%q is not proc@seconds", p)
		}
		id, err := strconv.Atoi(proc)
		if err != nil {
			return nil, fmt.Errorf("%q is not a process id", proc)
		}
		secs, err := strconv.ParseFloat(at, 64)
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("%q is not a positive kill offset in seconds", at)
		}
		out = append(out, regload.Restart{
			Proc:  id,
			After: time.Duration(secs * float64(time.Second)),
		})
	}
	return out, nil
}

// parseDead parses the comma-separated -dead list; range checks live in
// Spec.Validate.
func parseDead(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%q is not a process id", p)
		}
		out = append(out, v)
	}
	return out, nil
}
