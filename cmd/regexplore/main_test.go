package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twobitreg/internal/explore"
)

func TestRunSweepJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{algs: "twobit", strategies: "pct,race", n: 5, ops: 12,
		reads: 0.5, crashes: 1, budget: 6, seed0: 1, jsonOut: true}
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("clean sweep reported failure: %v\n%s", err, buf.String())
	}
	var res explore.SweepResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if res.Runs != 6 || res.Clean != 6 {
		t.Fatalf("expected 6 clean runs, got %+v", res)
	}
}

func TestRunSweepCatchesMutantAndExitsNonZero(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{algs: "mut-stale-read", n: 5, ops: 30, reads: 0.6,
		crashes: 1, budget: 60, seed0: 1, doShrink: true}
	err := run(cfg, &buf)
	if err == nil {
		t.Fatalf("sweep over a mutant reported success:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL xb1:mut-stale-read") {
		t.Fatalf("failure report carries no replay token:\n%s", buf.String())
	}
}

// TestRunSweepMultiWriter: a -writers sweep must default to the
// MWMR-capable algorithms, run clean, and report at least two writer
// processes per run.
func TestRunSweepMultiWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{strategies: "race,pct", n: 5, ops: 16, reads: 0.4,
		crashes: 1, writers: 3, budget: 4, seed0: 1, jsonOut: true}
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("clean multi-writer sweep reported failure: %v\n%s", err, buf.String())
	}
	var res explore.SweepResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if res.Runs != 4 || res.Clean != 4 {
		t.Fatalf("expected 4 clean runs, got %+v", res)
	}
}

// TestRunReplayMultiWriterToken: a 9-field multi-writer token replays
// through the CLI and the result reports the writer interleaving.
func TestRunReplayMultiWriterToken(t *testing.T) {
	tok := explore.Schedule{Alg: "abd-mwmr", Strategy: "race", Seed: 3, N: 5,
		Ops: 15, ReadFrac: 0.4, Crashes: 1, Writers: 3}.Token()
	if !strings.HasSuffix(tok, ":3") {
		t.Fatalf("token %q does not carry the writer count", tok)
	}
	var buf bytes.Buffer
	if err := run(config{replay: tok, jsonOut: true}, &buf); err != nil {
		t.Fatalf("replay of a clean multi-writer schedule failed: %v", err)
	}
	var res explore.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("replay output is not JSON: %v\n%s", err, buf.String())
	}
	if res.Token != tok || res.WriterProcs < 2 {
		t.Fatalf("replay result does not describe a multi-writer run: %+v", res)
	}
}

func TestRunReplayToken(t *testing.T) {
	tok := explore.Schedule{Alg: "twobit", Strategy: "asym", Seed: 3, N: 5,
		Ops: 15, ReadFrac: 0.5, Crashes: 1}.Token()
	var buf bytes.Buffer
	if err := run(config{replay: tok, jsonOut: true}, &buf); err != nil {
		t.Fatalf("replay of a clean schedule failed: %v", err)
	}
	var res explore.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("replay output is not JSON: %v\n%s", err, buf.String())
	}
	if res.Token != tok || res.Fingerprint == "" {
		t.Fatalf("replay result does not describe the token: %+v", res)
	}

	if err := run(config{replay: "not-a-token"}, &buf); err == nil {
		t.Fatal("garbage token accepted")
	}
}
