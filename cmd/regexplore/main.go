// Command regexplore runs budgeted adversarial schedule-exploration sweeps
// over the register algorithms: every selected algorithm runs under every
// selected adversary strategy across consecutive seeds, each run is checked
// for atomicity (and, for the two-bit register, the proof invariants), and
// every failure is reported with a one-line replay token that reproduces it
// byte for byte via
//
//	go test ./internal/explore -run TestReplay -replay=<token>
//
// Usage:
//
//	regexplore [-algs twobit,abd] [-strategies slowquorum,pct] [-n 5]
//	           [-ops 30] [-reads 0.6] [-crashes 1] [-writers 1] [-pct d]
//	           [-skew k] [-budget 100] [-seed0 1] [-workers w] [-shrink] [-json]
//	regexplore -replay <token> [-json]
//
// -writers 2..4 sweeps true multi-writer workloads (concurrent writer
// streams with distinct tagged values, judged by the near-linear MWMR
// cluster checker — or, for the keyed regmap algorithms, per key); the
// algorithm list then defaults to the MWMR-capable algorithms. -pct d
// upgrades the pct strategy to a true d-bounded PCT (per-process
// priorities with d seeded change points; the depth travels in a 10th
// token field). -skew k gives writer 0 k times each peer's write rate (an
// 11th token field; requires -writers >= 2). The sweep exits non-zero if
// any schedule failed; -shrink additionally minimizes each failing
// descriptor before reporting it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"twobitreg/internal/explore"
)

type config struct {
	algs, strategies  string
	n, ops            int
	reads             float64
	crashes, budget   int
	writers, pct      int
	skew, workers     int
	seed0             int64
	jsonOut, doShrink bool
	replay            string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.algs, "algs", "", "comma-separated algorithms (default: all correct ones; see also mutants mut-*)")
	flag.StringVar(&cfg.strategies, "strategies", "", "comma-separated adversary strategies (default: all)")
	flag.IntVar(&cfg.n, "n", 5, "number of processes")
	flag.IntVar(&cfg.ops, "ops", 30, "operations per run")
	flag.Float64Var(&cfg.reads, "reads", 0.6, "read fraction in [0,1]")
	flag.IntVar(&cfg.crashes, "crashes", 1, "non-writer crashes per run (capped at t)")
	flag.IntVar(&cfg.writers, "writers", 1, "concurrent writers; >= 2 sweeps multi-writer workloads over MWMR-capable algorithms")
	flag.IntVar(&cfg.pct, "pct", 0, "priority change points for the pct strategy (d-bounded PCT); 0 keeps the legacy random-tie mode")
	flag.IntVar(&cfg.skew, "skew", 0, "hot-writer skew: writer 0 writes this multiple of each peer's rate (>= 2; needs -writers >= 2)")
	flag.IntVar(&cfg.budget, "budget", 100, "total runs in the sweep")
	flag.IntVar(&cfg.workers, "workers", 1, "sweep worker goroutines; negative uses GOMAXPROCS; output is identical at any count")
	flag.Int64Var(&cfg.seed0, "seed0", 1, "first seed")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit JSON instead of text")
	flag.BoolVar(&cfg.doShrink, "shrink", false, "minimize failing schedules before reporting")
	flag.StringVar(&cfg.replay, "replay", "", "replay one token instead of sweeping")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "regexplore:", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.replay != "" {
		return runReplay(cfg, out)
	}
	spec := explore.SweepSpec{
		Algs: csv(cfg.algs), Strategies: csv(cfg.strategies),
		N: cfg.n, Ops: cfg.ops, ReadFrac: cfg.reads, Crashes: cfg.crashes,
		Writers: cfg.writers, PCT: cfg.pct, Skew: cfg.skew,
		Budget: cfg.budget, Seed0: cfg.seed0, Workers: cfg.workers,
	}
	res, err := explore.Sweep(spec)
	if err != nil {
		return err
	}
	if cfg.doShrink {
		for i, f := range res.Failures {
			if _, small, err := explore.Shrink(f.Schedule, 60); err == nil {
				res.Failures[i] = small
			}
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "explored      %d schedules (%d clean, %d failing)\n", res.Runs, res.Clean, len(res.Failures))
		for _, f := range res.Failures {
			fmt.Fprintf(out, "FAIL %s\n     %s\n", f.Token, f.Violation())
		}
		if len(res.Failures) == 0 {
			fmt.Fprintln(out, "verdict       every explored schedule is atomic ✓")
		}
	}
	if len(res.Failures) > 0 {
		return fmt.Errorf("%d of %d schedules failed", len(res.Failures), res.Runs)
	}
	return nil
}

func runReplay(cfg config, out io.Writer) error {
	s, err := explore.ParseToken(cfg.replay)
	if err != nil {
		return err
	}
	r, err := explore.Run(s)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "replayed      %s\n", r.Token)
		fmt.Fprintf(out, "extent        %d events, %d msgs, end time %.3g\n", r.Events, r.Msgs, r.EndTime)
		fmt.Fprintf(out, "operations    %d completed, %d pending\n", r.Completed, r.Pending)
		if r.ReadRounds > 0 || r.WriteRounds > 0 {
			fmt.Fprintf(out, "rounds/op     read %.2f, write %.2f\n", r.ReadRounds, r.WriteRounds)
			fmt.Fprintf(out, "latency (Δ)   read %.2f, write %.2f\n", r.ReadLatency, r.WriteLatency)
		}
		fmt.Fprintf(out, "fingerprint   %s\n", r.Fingerprint)
	}
	if r.Failed() {
		return fmt.Errorf("replayed failure: %s", r.Violation())
	}
	if !cfg.jsonOut {
		fmt.Fprintln(out, "verdict       clean ✓")
	}
	return nil
}

func csv(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
