package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed. Not safe for parallel subtests.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

func TestRunSmoke(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(3, 2, false, false) })
	if err != nil {
		t.Fatal(err)
	}
	// The table must name every column and every row.
	for _, want := range []string{"twobit", "abd", "bounded-abd", "attiya",
		"#msgs: write", "#msgs: read", "msg size (bits)", "local memory",
		"Time: write", "Time: read"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if _, err := captureStdout(t, func() error { return run(0, 2, false, false) }); err == nil {
		t.Fatal("n=0 accepted")
	}
}
