// Command table1 regenerates the paper's Table 1: it measures message
// counts, control sizes, local memory and Δ-unit latencies for all four
// algorithms on the virtual-time simulator and prints them next to the
// published entries.
//
// Usage:
//
//	table1 [-n 5] [-ops 10] [-verify] [-sweep]
//
// -verify exits non-zero unless every claim of the paper reproduces.
// -sweep prints the n-sweep used for the asymptotic rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"twobitreg/internal/eval"
)

func main() {
	n := flag.Int("n", 5, "number of processes")
	ops := flag.Int("ops", 10, "operations per measurement")
	verify := flag.Bool("verify", false, "fail unless every Table 1 claim reproduces")
	sweep := flag.Bool("sweep", false, "print message-cost sweep over n")
	flag.Parse()

	if err := run(*n, *ops, *verify, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(n, ops int, verify, sweep bool) error {
	if n < 1 {
		return fmt.Errorf("need -n >= 1, got %d", n)
	}
	tab := eval.RunTable1(n, ops)
	fmt.Print(tab.Format())

	if sweep {
		fmt.Println("\nmessage-cost sweep (msgs per op)")
		fmt.Printf("%-14s", "n")
		for _, alg := range eval.Columns() {
			fmt.Printf(" | %-22s", alg.Name()+" (w / r)")
		}
		fmt.Println()
		for _, sn := range []int{3, 5, 10, 20, 40} {
			fmt.Printf("%-14d", sn)
			for _, alg := range eval.Columns() {
				m := eval.MeasureMsgs(alg, sn, 3)
				fmt.Printf(" | %-22s", fmt.Sprintf("%.0f / %.0f", m.PerWrite, m.PerRead))
			}
			fmt.Println()
		}
	}

	if verify {
		if err := tab.Verify(); err != nil {
			return err
		}
		fmt.Println("\nall Table 1 claims reproduced ✓")
	}
	return nil
}
