// Config store: the read-dominated application the paper's conclusion
// motivates, served by the sharded keyed register service. A control
// plane (the writer) publishes configuration revisions through the binary
// client protocol; many data-plane workers read them continuously, each
// worker preferring a different member of every shard's quorum group so
// the read load spreads.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"twobitreg/internal/regclient"
	"twobitreg/internal/shard"
)

func main() {
	lc, err := shard.StartLocal(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	keys := []string{"routing/table", "limits/qps", "flags/rollout"}

	// Control plane: three revisions per key, through one client.
	control, err := regclient.New(lc.Config, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer control.Close()
	for rev := 1; rev <= 3; rev++ {
		for _, k := range keys {
			if err := control.Put(k, []byte(fmt.Sprintf("%s@rev%d", k, rev))); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Data plane: workers hammer reads, each preferring a different shard
	// member (regclient.New's prefer offset rotates the quorum group).
	var reads atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := regclient.New(lc.Config, w)
			if err != nil {
				log.Printf("client: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				if _, err := cl.Get(k); err != nil {
					log.Printf("read: %v", err)
					return
				}
				reads.Add(1)
			}
		}()
	}
	wg.Wait()

	for _, k := range keys {
		v, err := control.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s = %s (shard %d)\n", k, v, lc.Config.ShardOf(k))
	}
	fmt.Printf("\n%d worker reads over connection-multiplexed client sessions\n", reads.Load())
	fmt.Println("across 2 independent quorum groups of 3 processes each.")
}
