// Config store: the read-dominated application the paper's conclusion
// motivates, built on internal/regmap — one two-bit register per key,
// multiplexed over a single set of five processes. A control plane (the
// writer) publishes configuration revisions; many data-plane workers read
// them continuously through their nearest process.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"twobitreg/internal/metrics"
	"twobitreg/internal/regmap"
)

func main() {
	col := &metrics.Collector{}
	store, err := regmap.New(regmap.Config{N: 5, Collector: col, HistoryGC: true})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Stop()

	keys := []string{"routing/table", "limits/qps", "flags/rollout"}

	// Control plane: three revisions per key.
	for rev := 1; rev <= 3; rev++ {
		for _, k := range keys {
			if err := store.Write(k, []byte(fmt.Sprintf("%s@rev%d", k, rev))); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Data plane: workers hammer reads through different processes.
	var reads atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				if _, err := store.Read(1+(w+i)%4, k); err != nil {
					log.Printf("read: %v", err)
					return
				}
				reads.Add(1)
			}
		}()
	}
	wg.Wait()

	for _, k := range keys {
		v, err := store.Read(2, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s = %s\n", k, v)
	}

	s := col.Snapshot()
	fmt.Printf("\n%d worker reads; %d protocol messages total\n", reads.Load(), s.TotalMsgs)
	fmt.Printf("per-message control: 2 register bits + key bytes (max seen %d bits)\n", s.MaxCtrlBits)
}
