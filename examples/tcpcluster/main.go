// TCP cluster: a 2-shard × 3-process keyed register service over loopback
// TCP, driven through the versioned binary client protocol — the full
// production stack of cmd/regnode v2 inside one program (per-shard quorum
// groups, hash placement, connection-multiplexed client sessions). Run
// regnode/regctl for the multi-process version.
package main

import (
	"fmt"
	"log"

	"twobitreg/internal/regclient"
	"twobitreg/internal/shard"
)

func main() {
	lc, err := shard.StartLocal(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	fmt.Println("2-shard × 3-process keyed register service over loopback TCP:")
	for s, sh := range lc.Config.Shards {
		for p, proc := range sh.Procs {
			fmt.Printf("  shard %d process %d: mesh %s, clients %s\n", s, p, proc.Mesh, proc.Client)
		}
	}

	cl, err := regclient.New(lc.Config, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	keys := []string{"alpha", "beta", "gamma", "delta"}
	fmt.Println("\nkeyed writes through the binary client protocol:")
	for _, k := range keys {
		if err := cl.Put(k, []byte("value of "+k)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  put %-5s -> shard %d\n", k, lc.Config.ShardOf(k))
	}

	// One process per shard dies; the client fails over to the surviving
	// majority of each quorum group.
	lc.KillProc(0, 0)
	lc.KillProc(1, 2)
	fmt.Println("\nkilled shard 0 process 0 and shard 1 process 2; reading through survivors:")
	for _, k := range keys {
		v, err := cl.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  get %-5s = %s (shard %d)\n", k, v, lc.Config.ShardOf(k))
	}
	fmt.Println("\neach shard is an independent quorum group: capacity grows with machines.")
}
