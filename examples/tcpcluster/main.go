// TCP cluster: three register processes connected over loopback TCP, each
// with its own event loop and mesh endpoint, exchanging the 2-bit wire
// format. This is the full production stack of cmd/regnode inside one
// program — run regnode/regctl for the multi-process version.
package main

import (
	"fmt"
	"log"

	"twobitreg/internal/cluster"
	"twobitreg/internal/core"
	"twobitreg/internal/proto"
	"twobitreg/internal/transport"
	"twobitreg/internal/wire"
)

func main() {
	const n = 3
	nodes := make([]*cluster.Node, n)
	meshes := make([]*transport.Mesh, n)

	// Bind ephemeral listeners first, then exchange the address table.
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		m, err := transport.NewMesh(i, n, "127.0.0.1:0", wire.Codec{}, func(from int, msg proto.Message) {
			nodes[i].Deliver(from, msg)
		})
		if err != nil {
			log.Fatal(err)
		}
		meshes[i] = m
		addrs[i] = m.Addr()
	}
	for _, m := range meshes {
		if err := m.SetPeers(addrs); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		nodes[i] = cluster.NewNode(i, n, 0, core.Algorithm(), func(to int, msg proto.Message) {
			if err := meshes[i].Send(to, msg); err != nil {
				log.Printf("send: %v", err)
			}
		})
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		for _, m := range meshes {
			m.Close()
		}
	}()

	fmt.Println("3-process register over loopback TCP:")
	for i, a := range addrs {
		fmt.Printf("  process %d at %s\n", i, a)
	}

	if err := nodes[0].Write([]byte("framed in 2 bits")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwriter (process 0) wrote: framed in 2 bits")
	for i := 0; i < n; i++ {
		v, err := nodes[i].Read()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d reads over TCP: %s\n", i, v)
	}
	fmt.Println("\nevery frame's first byte used only its two low bits for control.")
}
