// Linearizability harness: run a writer and several readers concurrently on
// the real goroutine runtime under delivery jitter, record the complete
// operation history, and verify it against the paper's atomicity conditions
// (Lemma 10's three claims) — the mechanised version of the paper's proof
// obligations.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"twobitreg/internal/check"
	"twobitreg/internal/cluster"
	"twobitreg/internal/core"
	"twobitreg/internal/proto"
)

func main() {
	start := time.Now()
	rec := check.NewRecorder(nil, func() float64 { return time.Since(start).Seconds() })

	c, err := cluster.New(cluster.Config{
		N: 5, Writer: 0, Alg: core.Algorithm(),
		MaxJitter: 300 * time.Microsecond, Seed: 2024,
		OnInvoke: func(op proto.OpID, pid int, kind proto.OpKind, v proto.Value) {
			rec.Invoke(op, pid, kind, v)
		},
		OnComplete: func(op proto.OpID, _ int, comp proto.Completion) {
			rec.Respond(op, comp.Value)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	const writes, readers, readsEach = 30, 4, 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= writes; k++ {
			if err := c.Write(0, []byte(fmt.Sprintf("v%03d", k))); err != nil {
				log.Printf("write: %v", err)
				return
			}
		}
	}()
	for r := 1; r <= readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < readsEach; k++ {
				if _, err := c.Read(r); err != nil {
					log.Printf("read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	h := rec.History()
	fmt.Printf("recorded %d operations (%d writes, %d reads) across %d processes\n",
		len(h.Ops), writes, readers*readsEach, 5)

	if err := check.CheckSWMR(h); err != nil {
		log.Fatalf("ATOMICITY VIOLATION: %v", err)
	}
	fmt.Println("claim 1 (no read from the future)   ✓")
	fmt.Println("claim 2 (no overwritten value read) ✓")
	fmt.Println("claim 3 (no new/old inversion)      ✓")
	fmt.Println("\nthe execution is atomic — Lemma 10's conditions verified mechanically")
}
