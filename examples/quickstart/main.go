// Quickstart: a five-process two-bit atomic register. Write through the
// writer, read through every process, and show that the wire carried exactly
// four message types with two control bits each.
package main

import (
	"fmt"
	"log"

	"twobitreg"
)

func main() {
	// Five processes tolerate any two crashes (t < n/2).
	reg, err := twobitreg.Start(5)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Stop()

	// Two writes exercise both parities of the alternating-bit discipline
	// (WRITE1 then WRITE0).
	for _, v := range []string{"sumer, 3200 BC", "turing, 1936"} {
		if err := reg.Write([]byte(v)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("written: %s\n", v)
	}

	for pid := 0; pid < reg.N(); pid++ {
		v, err := reg.Read(pid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d reads: %s\n", pid, v)
	}

	s := reg.Stats()
	fmt.Printf("\nnetwork: %d messages, %d control bits total (max %d bits/message)\n",
		s.TotalMsgs, s.ControlBits, s.MaxCtrlBits)
	fmt.Printf("message types used: %d (WRITE0, WRITE1, READ, PROCEED)\n", s.DistinctMessageTypes)
}
