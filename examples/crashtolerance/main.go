// Crash tolerance: the register stays live and atomic while any minority of
// processes crash — here 2 of 5, including one that crashes between a write
// and the reads that must still see it.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"twobitreg"
)

func main() {
	reg, err := twobitreg.Start(5, twobitreg.WithJitter(200*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Stop()

	if err := reg.Write([]byte("v1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote v1 with all 5 processes up")

	reg.Crash(4)
	fmt.Println("crashed process 4")

	if err := reg.Write([]byte("v2")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote v2 with 4/5 processes up")

	reg.Crash(3)
	fmt.Println("crashed process 3 — now at the t < n/2 limit")

	for pid := 0; pid <= 2; pid++ {
		v, err := reg.Read(pid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("survivor %d reads: %s\n", pid, v)
	}

	// Reading through a crashed process fails cleanly.
	if _, err := reg.Read(4); errors.Is(err, twobitreg.ErrCrashed) {
		fmt.Println("reading through crashed process 4: ErrCrashed (as expected)")
	}

	fmt.Println("\nliveness bound: one more crash would break t < n/2; operations would block forever")
}
