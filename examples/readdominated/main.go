// Read-dominated workloads: the paper's §5 argues the two-bit register suits
// read-dominated applications because reads cost O(n) messages (2(n-1))
// against ABD's 4(n-1), with constant two-bit control information. This
// example sweeps read:write mixes on the virtual-time simulator and prints
// the per-operation network cost of both algorithms.
package main

import (
	"fmt"

	"twobitreg/internal/abd"
	"twobitreg/internal/core"
	"twobitreg/internal/eval"
	"twobitreg/internal/workload"
)

func main() {
	const n, ops = 7, 200
	fmt.Printf("n = %d processes, %d ops per mix\n\n", n, ops)
	fmt.Printf("%-12s | %-24s | %-24s\n", "read mix", "twobit", "abd (unbounded)")
	fmt.Printf("%-12s | %8s %13s | %8s %13s\n", "", "msgs/op", "ctrlbits/op", "msgs/op", "ctrlbits/op")
	fmt.Println("-------------+--------------------------+-------------------------")
	for _, frac := range workload.ReadMixes() {
		tb := eval.MeasureMix(core.Algorithm(), n, ops, frac)
		ab := eval.MeasureMix(abd.Algorithm(), n, ops, frac)
		fmt.Printf("%9.0f%% r | %8.1f %13.1f | %8.1f %13.1f\n",
			frac*100, tb.MsgsPerOp, tb.CtrlBitsPerOp, ab.MsgsPerOp, ab.CtrlBitsPerOp)
	}
	fmt.Println("\nshape: two-bit wins on messages when reads dominate (its writes are")
	fmt.Println("O(n²)), and always wins on control volume — 2 bits/message, constant.")
}
