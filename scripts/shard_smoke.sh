#!/bin/sh
# Loopback smoke of the sharded keyed service: boot a 2-shard x 3-process
# regnode cluster, drive keyed writes and reads across both shards with
# regctl (binary client protocol), then kill one process per shard and
# prove the client fails over while both quorum groups keep serving.
# CI runs this on every PR; it also runs standalone from the repo root.
set -e

MESH="127.0.0.1:7600,127.0.0.1:7601,127.0.0.1:7602;127.0.0.1:7610,127.0.0.1:7611,127.0.0.1:7612"
CLIENTS="127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702;127.0.0.1:7710,127.0.0.1:7711,127.0.0.1:7712"
KEYS="alpha beta gamma delta epsilon zeta eta theta"

bin="$(mktemp -d)"
go build -o "$bin/regnode" ./cmd/regnode
go build -o "$bin/regctl" ./cmd/regctl

pids=""
for s in 0 1; do
  for i in 0 1 2; do
    "$bin/regnode" -peers "$MESH" -clients "$CLIENTS" -shard $s -id $i &
    pids="$pids $!"
  done
done
trap 'kill $pids 2>/dev/null || true; rm -rf "$bin"' EXIT
sleep 1

# Eight keys hash-spread over the two quorum groups; every value must
# read back exactly, through whichever shard owns it.
for k in $KEYS; do
  "$bin/regctl" -cluster "$CLIENTS" put "$k" "value-$k"
done
for k in $KEYS; do
  got="$("$bin/regctl" -cluster "$CLIENTS" get "$k")"
  [ "$got" = "value-$k" ] || { echo "key $k: got '$got'" >&2; exit 1; }
done

# One process down per shard (shard 0 id 1, shard 1 id 2): both groups
# keep a 2-of-3 majority and the client fails over past the dead members.
set -- $pids
kill $2 $6
sleep 0.3
for k in $KEYS; do
  got="$("$bin/regctl" -cluster "$CLIENTS" get "$k")"
  [ "$got" = "value-$k" ] || { echo "key $k after kills: got '$got'" >&2; exit 1; }
done
"$bin/regctl" -cluster "$CLIENTS" put alpha rewritten
[ "$("$bin/regctl" -cluster "$CLIENTS" get alpha)" = "rewritten" ] || {
  echo "write after kills did not read back" >&2
  exit 1
}

echo "shard smoke ok: 2 shards x 3 processes, 1 dead per shard, all keys served"
